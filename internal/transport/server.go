package transport

import (
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/tiering"
)

// ServerConfig configures a FedAT aggregation server.
type ServerConfig struct {
	// Addr to listen on, e.g. "127.0.0.1:7070". Use port 0 for an
	// ephemeral port (Server.Addr reports the bound address).
	Addr string
	// NumClients registrations to wait for before training starts.
	NumClients int
	// NumTiers for the latency partition.
	NumTiers int
	// Rounds is the global update budget T.
	Rounds int
	// ClientsPerRound per tier round.
	ClientsPerRound int
	// Weighted selects Eq. 5 aggregation (true) or uniform.
	Weighted bool
	// Codec compresses pushes; defaults to polyline precision 4, the
	// paper's configuration.
	Codec codec.Codec
	// Shapes describe the model's parameter blocks.
	Shapes []codec.ShapeInfo
	// W0 is the initial global model.
	W0 []float64
	// Seed drives client selection.
	Seed uint64
	// Logf receives progress lines; nil silences logging.
	Logf func(format string, args ...any)
}

// Server drives FedAT over live TCP connections.
type Server struct {
	cfg      ServerConfig
	ln       net.Listener
	agg      *core.Aggregator
	stopping atomic.Bool

	mu      sync.Mutex
	clients map[uint32]*clientConn
}

type clientConn struct {
	reg  Register
	conn net.Conn
}

// NewServer binds the listener; call Run to serve.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.NumClients <= 0 || cfg.Rounds <= 0 || cfg.NumTiers <= 0 {
		return nil, fmt.Errorf("transport: NumClients, Rounds and NumTiers must be positive")
	}
	if cfg.NumTiers > cfg.NumClients {
		return nil, fmt.Errorf("transport: more tiers than clients")
	}
	if len(cfg.W0) == 0 {
		return nil, fmt.Errorf("transport: empty initial model")
	}
	if cfg.ClientsPerRound <= 0 {
		cfg.ClientsPerRound = 10
	}
	if cfg.Codec == nil {
		cfg.Codec = codec.NewPolyline(4)
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	agg, err := core.NewAggregator(cfg.NumTiers, cfg.W0, cfg.Weighted)
	if err != nil {
		ln.Close()
		return nil, err
	}
	return &Server{cfg: cfg, ln: ln, agg: agg, clients: map[uint32]*clientConn{}}, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Aggregator exposes the server state (for tests and status endpoints).
func (s *Server) Aggregator() *core.Aggregator { return s.agg }

// Run accepts registrations, partitions clients into tiers, then runs one
// synchronous round loop per tier concurrently until the global budget is
// spent. It returns the final global model.
func (s *Server) Run() ([]float64, error) {
	defer s.ln.Close()
	if err := s.acceptClients(); err != nil {
		return nil, err
	}
	tiers := s.partition()
	s.cfg.Logf("fedat server: %d clients in %d tiers, starting %d rounds", len(s.clients), len(tiers.Members), s.cfg.Rounds)

	var wg sync.WaitGroup
	errs := make([]error, len(tiers.Members))
	root := rng.New(s.cfg.Seed)
	for m := range tiers.Members {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			errs[m] = s.tierLoop(m, tiers.Members[m], root.SplitLabeled(uint64(m)))
		}(m)
	}
	wg.Wait()
	s.shutdownClients()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return s.agg.Global(), nil
}

func (s *Server) acceptClients() error {
	for {
		s.mu.Lock()
		n := len(s.clients)
		s.mu.Unlock()
		if n >= s.cfg.NumClients {
			return nil
		}
		conn, err := s.ln.Accept()
		if err != nil {
			return fmt.Errorf("transport: accept: %w", err)
		}
		typ, payload, err := ReadFrame(conn)
		if err != nil || typ != MsgRegister {
			conn.Close()
			continue
		}
		reg, err := ParseRegister(payload)
		if err != nil {
			conn.Close()
			continue
		}
		s.mu.Lock()
		if _, dup := s.clients[reg.ClientID]; dup {
			s.mu.Unlock()
			conn.Close()
			return fmt.Errorf("transport: duplicate client id %d", reg.ClientID)
		}
		s.clients[reg.ClientID] = &clientConn{reg: reg, conn: conn}
		s.mu.Unlock()
		s.cfg.Logf("fedat server: client %d registered (%d samples, %dms hint)", reg.ClientID, reg.NumSamples, reg.LatencyHintMs)
	}
}

// partition tiers the registered clients by their latency hints, the
// transport-mode stand-in for the tiering module's profiling round.
func (s *Server) partition() *tiering.Tiers {
	ids := make([]uint32, 0, len(s.clients))
	for id := range s.clients {
		ids = append(ids, id)
	}
	// Deterministic order: sort by id.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	lat := make([]float64, len(ids))
	for i, id := range ids {
		lat[i] = float64(s.clients[id].reg.LatencyHintMs)
	}
	tiers, err := tiering.Partition(lat, s.cfg.NumTiers)
	if err != nil {
		// NumTiers <= NumClients is validated up front; Partition cannot
		// fail here.
		panic(err)
	}
	// Map positional indices back to client ids.
	for m := range tiers.Members {
		for j, pos := range tiers.Members[m] {
			tiers.Members[m][j] = int(ids[pos])
		}
	}
	return tiers
}

func (s *Server) tierLoop(m int, members []int, selRNG *rng.RNG) error {
	for !s.stopping.Load() && s.agg.Rounds() < s.cfg.Rounds {
		k := s.cfg.ClientsPerRound
		if k > len(members) {
			k = len(members)
		}
		if k == 0 {
			return nil
		}
		sel := selRNG.Choose(len(members), k)
		global := s.agg.Global()
		msg, err := codec.MarshalModel(s.cfg.Codec, s.cfg.Shapes, global)
		if err != nil {
			return err
		}
		round := uint64(s.agg.Rounds())
		// Push to every selected client first so they train concurrently,
		// then collect; the synchronous barrier is the collect loop.
		pushed := make([]*clientConn, 0, k)
		for _, pos := range sel {
			cc := s.client(uint32(members[pos]))
			if cc == nil {
				continue
			}
			if err := WriteFrame(cc.conn, MsgModelPush, ModelPush(round, msg)); err != nil {
				s.dropClient(cc, err)
				continue
			}
			pushed = append(pushed, cc)
		}
		updates := make([]core.ClientUpdate, 0, len(pushed))
		for _, cc := range pushed {
			typ, payload, err := ReadFrame(cc.conn)
			if err != nil || typ != MsgModelUpdate {
				s.dropClient(cc, err)
				continue
			}
			_, numSamples, _, model, err := ParseModelUpdate(payload)
			if err != nil {
				s.dropClient(cc, err)
				continue
			}
			_, w, err := codec.UnmarshalModel(model)
			if err != nil || numSamples == 0 {
				s.dropClient(cc, err)
				continue
			}
			updates = append(updates, core.ClientUpdate{Weights: w, N: int(numSamples)})
		}
		if len(updates) == 0 {
			continue
		}
		if _, err := s.agg.UpdateTier(m, updates); err != nil {
			return err
		}
		s.cfg.Logf("fedat server: tier %d finished round (global t=%d)", m, s.agg.Rounds())
	}
	return nil
}

func (s *Server) client(id uint32) *clientConn {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.clients[id]
}

func (s *Server) dropClient(cc *clientConn, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.clients[cc.reg.ClientID]; !ok {
		return
	}
	delete(s.clients, cc.reg.ClientID)
	cc.conn.Close()
	if err != nil {
		s.cfg.Logf("fedat server: dropping client %d: %v", cc.reg.ClientID, err)
	}
}

func (s *Server) shutdownClients() {
	s.stopping.Store(true)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, cc := range s.clients {
		if err := WriteFrame(cc.conn, MsgShutdown, nil); err != nil {
			log.Printf("transport: shutdown to client %d: %v", cc.reg.ClientID, err)
		}
		cc.conn.Close()
	}
}
