package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/fl"
	"repro/internal/metrics"
	"repro/internal/robust"
	"repro/internal/simnet"
)

// ServerConfig configures a federated aggregation server. The server is a
// thin adapter: which method runs — FedAT, any baseline, any composed
// variant — is entirely the Method/Run pair, executed by the internal/fl
// policy engine over the live fabric.
type ServerConfig struct {
	// Addr to listen on, e.g. "127.0.0.1:7070". Use port 0 for an
	// ephemeral port (Server.Addr reports the bound address).
	Addr string
	// NumClients registrations to wait for before training starts.
	// Clients must register with ids 0..NumClients-1 (the engine's client
	// identity space); out-of-range or duplicate ids are rejected.
	NumClients int
	// Method is the policy composition to run; zero value means the
	// registry's fedat.
	Method fl.Method
	// Run is the engine configuration (Rounds, ClientsPerRound, NumTiers,
	// LocalEpochs, BatchSize, Lambda, Seed, …). Run.Codec is also the wire
	// compression codec; nil defaults to polyline precision 4, the
	// paper's deployment configuration.
	Run fl.RunConfig
	// Shapes describe the model's parameter blocks.
	Shapes []codec.ShapeInfo
	// W0 is the initial global model.
	W0 []float64
	// Dataset labels the run record.
	Dataset string
	// Eval optionally evaluates the global model server-side against a
	// mirrored federation (cmd/fedserver derives one from the shared
	// seed). Without it the run record carries no accuracy points, and
	// TiFL's accuracy-driven selection degrades to credit-only behavior.
	Eval *fl.Evaluator
	// Observers subscribe to the engine's run event stream alongside the
	// built-in recorder. The edge role of a hierarchy attaches its cloud
	// uplink here — an fl.Syncer rides the observer list, so the engine
	// pushes to (and rebases from) the root after its own folds.
	Observers []fl.Observer
	// Attack, with AttackFrac > 0, directs a deterministic subset of the
	// population to run the given attack during local training — the live
	// fabric's version of the simulator's adversarial behavior regime.
	// Membership is simnet.AttackTargets over Run.Seed, so a simulation and
	// a deployment sharing a seed poison the same client ids. Honest cohort
	// members receive a directive-free push. A fedclient may also force an
	// attack locally with -attack, which overrides the directive.
	Attack     robust.Attack
	AttackFrac float64
	// RoundTimeout bounds how long the server waits for one client's
	// response to a model push before dropping it — without it a silent
	// peer (half-open connection, stopped process) would stall its round
	// and the final drain forever. 0 means the 5-minute default; negative
	// disables the deadline.
	RoundTimeout time.Duration
	// Logf receives progress lines; nil silences logging.
	Logf func(format string, args ...any)
}

// Server drives the method engine over live TCP connections.
type Server struct {
	cfg      ServerConfig
	codec    codec.Codec
	ln       net.Listener
	stopping atomic.Bool

	mu      sync.Mutex
	clients map[uint32]*clientConn
	fab     *liveFabric
	regs    []Register // by client id; survives disconnects

	// attackers is the deterministic adversary subset (nil when the attack
	// regime is off); fixed at construction, read-only afterwards.
	attackers map[int]bool

	// extraObs subscribe to the engine's run event stream alongside the
	// built-in recorder (tests, dashboards). Set before calling Run.
	extraObs []fl.Observer
}

type clientConn struct {
	reg  Register
	conn net.Conn
	wmu  sync.Mutex
}

// send writes one frame; a mutex serializes writers (the engine's dispatch
// and the final shutdown broadcast) so frames never interleave.
func (cc *clientConn) send(typ byte, payload []byte) error {
	cc.wmu.Lock()
	defer cc.wmu.Unlock()
	return WriteFrame(cc.conn, typ, payload)
}

// NewServer binds the listener; call Run to serve.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.NumClients <= 0 {
		return nil, fmt.Errorf("transport: NumClients must be positive")
	}
	// Rounds and NumTiers have engine defaults, but a live deployment
	// should not start 100 rounds against real clients because of a typo:
	// require them explicitly, and fail tier-count mistakes before
	// clients connect rather than after registration.
	if cfg.Run.Rounds <= 0 || cfg.Run.NumTiers <= 0 {
		return nil, fmt.Errorf("transport: Run.Rounds and Run.NumTiers must be positive")
	}
	if cfg.Run.NumTiers > cfg.NumClients {
		return nil, fmt.Errorf("transport: more tiers than clients")
	}
	if len(cfg.W0) == 0 {
		return nil, fmt.Errorf("transport: empty initial model")
	}
	if cfg.Method.Name == "" {
		cfg.Method = fl.Methods["fedat"]
	}
	if cfg.Run.Codec == nil {
		cfg.Run.Codec = codec.NewPolyline(4)
	}
	if cfg.RoundTimeout == 0 {
		cfg.RoundTimeout = 5 * time.Minute
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	var attackers map[int]bool
	if cfg.Attack.Active() && cfg.AttackFrac > 0 {
		attackers = make(map[int]bool)
		for _, id := range simnet.AttackTargets(cfg.Run.Seed, cfg.NumClients, cfg.AttackFrac) {
			attackers[id] = true
		}
		cfg.Logf("fed server: attack regime %s on %d/%d clients", cfg.Attack.Kind, len(attackers), cfg.NumClients)
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	return &Server{
		cfg:       cfg,
		codec:     cfg.Run.Codec,
		ln:        ln,
		clients:   map[uint32]*clientConn{},
		regs:      make([]Register, cfg.NumClients),
		attackers: attackers,
	}, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Registered reports how many clients have registered so far.
func (s *Server) Registered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.clients)
}

// Run accepts registrations, then hands the loop to the method engine over
// the live fabric: the engine selects cohorts, this server ships them the
// model and folds what comes back, exactly as the simulator does. It
// returns the run record and the final global model.
func (s *Server) Run() (*metrics.Run, []float64, error) {
	defer s.ln.Close()
	if err := s.acceptClients(); err != nil {
		s.shutdownClients()
		return nil, nil, err
	}
	s.cfg.Logf("fed server: %d clients registered; running %s (%s) for %d global updates",
		s.cfg.NumClients, s.cfg.Method.Name, s.cfg.Method, s.cfg.Run.Rounds)

	fab := &liveFabric{rtClock: newRTClock(), s: s}
	s.mu.Lock()
	s.fab = fab
	s.mu.Unlock()
	if s.stopping.Load() { // Shutdown raced registration
		fab.Stop()
	}

	// The final model is the last fold's global snapshot (copied: some
	// update rules reuse the event's buffer).
	final := fab.InitialWeights()
	capture := fl.ObserverFunc(func(ev fl.Event) {
		switch e := ev.(type) {
		case fl.TierFoldEvent:
			final = append(final[:0], e.Global...)
			s.cfg.Logf("fed server: tier %d folded %d updates (global t=%d)", e.Tier, e.Kept, e.Round)
		case fl.RetierEvent:
			s.cfg.Logf("fed server: re-tiered at t=%d: %d clients migrated", e.Round, e.Migrations)
		}
	})

	obs := append([]fl.Observer{capture}, s.cfg.Observers...)
	run, err := s.cfg.Method.RunOn(fab, s.cfg.Run, append(obs, s.extraObs...)...)
	// Let in-flight collectors finish reading their last responses before
	// connections close, so idle clients get a clean shutdown frame.
	fab.drain()
	s.shutdownClients()
	if err != nil {
		return nil, nil, err
	}
	return run, final, nil
}

// Shutdown stops the server from another goroutine: the engine loop halts
// after its current callback, registration stops accepting, in-flight
// response reads are interrupted (clients mid-round are dropped rather
// than waited for), and Run proceeds to notify the remaining registered
// clients.
func (s *Server) Shutdown() {
	s.stopping.Store(true)
	s.ln.Close()
	s.mu.Lock()
	if s.fab != nil {
		s.fab.Stop()
	}
	// Expire any blocked ReadFrame immediately so collectors resolve and
	// Run's drain cannot stall behind a slow or silent peer. Idle
	// connections are unaffected (no read in progress server-side) and
	// still receive a clean shutdown frame.
	now := time.Now()
	for _, cc := range s.clients {
		cc.conn.SetReadDeadline(now)
	}
	s.mu.Unlock()
}

func (s *Server) acceptClients() error {
	for {
		s.mu.Lock()
		n := len(s.clients)
		s.mu.Unlock()
		if n >= s.cfg.NumClients {
			return nil
		}
		conn, err := s.ln.Accept()
		if err != nil {
			if s.stopping.Load() {
				return fmt.Errorf("transport: server shut down during registration (%d/%d clients)", n, s.cfg.NumClients)
			}
			return fmt.Errorf("transport: accept: %w", err)
		}
		typ, payload, err := ReadFrame(conn)
		if err != nil || typ != MsgRegister {
			conn.Close()
			continue
		}
		reg, err := ParseRegister(payload)
		if err != nil {
			conn.Close()
			continue
		}
		// A well-formed registration with a bad id means the fleet is
		// misconfigured (two clients sharing -id, or an id outside the
		// engine's 0..N-1 identity space): fail fast instead of waiting
		// forever for an Nth distinct id that will never arrive.
		// Connections that never send a valid Register (port scanners,
		// protocol mismatches) are merely closed above.
		if int(reg.ClientID) >= s.cfg.NumClients {
			conn.Close()
			return fmt.Errorf("transport: client id %d out of range [0,%d)", reg.ClientID, s.cfg.NumClients)
		}
		s.mu.Lock()
		if _, dup := s.clients[reg.ClientID]; dup {
			s.mu.Unlock()
			conn.Close()
			return fmt.Errorf("transport: duplicate client id %d", reg.ClientID)
		}
		s.clients[reg.ClientID] = &clientConn{reg: reg, conn: conn}
		s.regs[reg.ClientID] = reg
		s.mu.Unlock()
		s.cfg.Logf("fed server: client %d registered (%d samples, %dms hint)", reg.ClientID, reg.NumSamples, reg.LatencyHintMs)
	}
}

func (s *Server) client(id uint32) *clientConn {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.clients[id]
}

func (s *Server) dropClient(cc *clientConn, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.clients[cc.reg.ClientID]; !ok {
		return
	}
	delete(s.clients, cc.reg.ClientID)
	cc.conn.Close()
	if err != nil {
		s.cfg.Logf("fed server: dropping client %d: %v", cc.reg.ClientID, err)
	}
}

func (s *Server) shutdownClients() {
	s.stopping.Store(true)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, cc := range s.clients {
		if err := cc.send(MsgShutdown, nil); err != nil {
			s.cfg.Logf("fed server: shutdown to client %d: %v", cc.reg.ClientID, err)
		}
		cc.conn.Close()
	}
}
