package transport

import (
	"bytes"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/rng"
	"repro/internal/simnet"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello fedat")
	if err := WriteFrame(&buf, MsgModelPush, payload); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgModelPush || string(got) != string(payload) {
		t.Fatalf("frame corrupted: %d %q", typ, got)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgShutdown, nil); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(&buf)
	if err != nil || typ != MsgShutdown || len(got) != 0 {
		t.Fatalf("empty frame: %v %d %v", err, typ, got)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, MsgRegister, []byte{1, 2, 3})
	data := buf.Bytes()[:buf.Len()-2]
	if _, _, err := ReadFrame(bytes.NewReader(data)); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestRegisterRoundTrip(t *testing.T) {
	r := Register{ClientID: 7, NumSamples: 123, LatencyHintMs: 4500}
	got, err := ParseRegister(r.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Fatalf("register corrupted: %+v", got)
	}
	if _, err := ParseRegister([]byte{1, 2}); err == nil {
		t.Fatal("short register accepted")
	}
}

func TestModelMessagesRoundTrip(t *testing.T) {
	model := []byte("model-bytes")
	spec := PushSpec{Round: 42, Epochs: 3, Batch: 10, Lambda: 0.4, LRScale: 0.75}
	gotSpec, m, err := ParseModelPush(ModelPush(spec, model))
	if err != nil || gotSpec != spec || string(m) != string(model) {
		t.Fatalf("push corrupted: %v %+v %q", err, gotSpec, m)
	}
	cid, n, rd, m2, err := ParseModelUpdate(ModelUpdate(3, 99, 42, model))
	if err != nil || cid != 3 || n != 99 || rd != 42 || string(m2) != string(model) {
		t.Fatalf("update corrupted: %v %d %d %d %q", err, cid, n, rd, m2)
	}
	if _, _, err := ParseModelPush([]byte{1}); err == nil {
		t.Fatal("short push accepted")
	}
	if _, _, _, _, err := ParseModelUpdate([]byte{1, 2, 3}); err == nil {
		t.Fatal("short update accepted")
	}
}

// ---------------------------------------------------------------------------
// Live-fabric helpers

// liveFederation is one in-process deployment testbed: a synthetic
// federation plus the model factory both sides derive from the shared seed.
type liveFederation struct {
	fed     *dataset.Federated
	factory fl.ModelFactory
	shapes  []codec.ShapeInfo
	n       int
}

func newLiveFederation(t *testing.T, n, classesPer int, seed uint64) *liveFederation {
	t.Helper()
	fed, err := dataset.FashionLike(n, classesPer, dataset.ScaleSmall, seed)
	if err != nil {
		t.Fatal(err)
	}
	factory := func(s uint64) *nn.Network {
		return nn.NewMLP(rng.New(s), fed.InDim, 8, fed.Classes)
	}
	ref := factory(seed)
	shapes := make([]codec.ShapeInfo, 0)
	for _, s := range ref.ParamShapes() {
		shapes = append(shapes, codec.ShapeInfo{Name: s.Name, Dims: s.Dims})
	}
	return &liveFederation{fed: fed, factory: factory, shapes: shapes, n: n}
}

// runLive deploys the method over loopback TCP: one server, lf.n in-process
// clients (ids 0..n-1, two latency-hint tiers), and returns the run record,
// the final global model, and the per-client errors.
func (lf *liveFederation) runLive(t *testing.T, method fl.Method, cfg fl.RunConfig, eval *fl.Evaluator) (*metrics.Run, []float64, []error) {
	t.Helper()
	return lf.runLiveObserved(t, method, cfg, eval)
}

func liveCfg(seed uint64) fl.RunConfig {
	return fl.RunConfig{
		Rounds:          3,
		ClientsPerRound: 3,
		LocalEpochs:     1,
		BatchSize:       8,
		Lambda:          0.4,
		LearningRate:    0.01,
		NumTiers:        2,
		Seed:            seed,
	}
}

func moved(w0, w []float64) bool {
	for i := range w {
		if w[i] != w0[i] {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// End-to-end deployments

// TestEndToEndFedAT runs the registry's FedAT — tier-paced, Eq. 5 fold —
// over real localhost TCP, driven by the same policy engine as the
// simulator. All tiers contribute, the budget completes and the model moves.
func TestEndToEndFedAT(t *testing.T) {
	lf := newLiveFederation(t, 6, 0, 21)
	cfg := liveCfg(5)
	cfg.Rounds = 6
	var tierFolds [2]int
	run, final, clientErrs := lf.runLiveObserved(t, fl.Methods["fedat"], cfg, nil, fl.ObserverFunc(func(ev fl.Event) {
		if e, ok := ev.(fl.TierFoldEvent); ok && e.Tier >= 0 && e.Tier < 2 {
			tierFolds[e.Tier]++
		}
	}))
	if run.GlobalRounds < cfg.Rounds {
		t.Fatalf("only %d global rounds completed", run.GlobalRounds)
	}
	for m, c := range tierFolds {
		if c == 0 {
			t.Fatalf("tier %d never contributed: %v", m, tierFolds)
		}
	}
	if !moved(lf.factory(cfg.Seed).WeightsCopy(), final) {
		t.Fatal("global model never moved")
	}
	if run.UpBytes <= 0 || run.DownBytes <= 0 {
		t.Fatalf("no communication recorded: up=%d down=%d", run.UpBytes, run.DownBytes)
	}
	for i, err := range clientErrs {
		if err != nil {
			t.Fatalf("client %d error: %v", i, err)
		}
	}
}

// runLiveObserved is the shared deployment body: one server (with optional
// extra observers on its engine), lf.n honest in-process clients split over
// two latency-hint tiers, and a watchdog on the server's completion.
func (lf *liveFederation) runLiveObserved(t *testing.T, method fl.Method, cfg fl.RunConfig, eval *fl.Evaluator, obs ...fl.Observer) (*metrics.Run, []float64, []error) {
	t.Helper()
	srv, err := NewServer(ServerConfig{
		Addr:       "127.0.0.1:0",
		NumClients: lf.n,
		Method:     method,
		Run:        cfg,
		Shapes:     lf.shapes,
		W0:         lf.factory(cfg.Seed).WeightsCopy(),
		Dataset:    lf.fed.Name,
		Eval:       eval,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.extraObs = obs

	var wg sync.WaitGroup
	clientErrs := make([]error, lf.n)
	for i := 0; i < lf.n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			hint := uint32(10)
			if i >= lf.n/2 {
				hint = 500 // slow tier
			}
			clientErrs[i] = RunClient(ClientConfig{
				Addr: srv.Addr(), ID: uint32(i), LatencyHintMs: hint,
				Data: lf.fed.Clients[i], Net: lf.factory(cfg.Seed),
				Opt: opt.NewAdam(cfg.LearningRate), Codec: cfg.Codec, Seed: cfg.Seed,
			})
		}(i)
	}

	type outcome struct {
		run   *metrics.Run
		final []float64
		err   error
	}
	done := make(chan outcome, 1)
	go func() {
		run, final, err := srv.Run()
		done <- outcome{run, final, err}
	}()
	var out outcome
	select {
	case out = <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("server did not finish in time")
	}
	wg.Wait()
	if out.err != nil {
		t.Fatalf("server error: %v", out.err)
	}
	return out.run, out.final, clientErrs
}

// TestAllRegistryMethodsOverLoopback deploys every method in the registry —
// synchronous, tier-paced and wait-free alike — over loopback TCP. The
// acceptance bar for the fabric abstraction: any composition the simulator
// runs, the live path runs too, with no per-method transport code.
func TestAllRegistryMethodsOverLoopback(t *testing.T) {
	for _, name := range fl.MethodNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			lf := newLiveFederation(t, 4, 0, 31)
			cfg := liveCfg(7)
			cfg.Rounds = 2
			cfg.ClientsPerRound = 2
			// TiFL's accuracy-driven selection wants a server-side
			// evaluation harness; give every method one so Eval events
			// flow on the live fabric too.
			eval := fl.NewDataEvaluator(lf.factory, cfg.Seed, lf.fed.Clients)
			run, final, clientErrs := lf.runLive(t, fl.Methods[name], cfg, eval)
			if run.GlobalRounds < cfg.Rounds {
				t.Fatalf("%s: only %d global rounds completed", name, run.GlobalRounds)
			}
			if len(run.Points) == 0 {
				t.Fatalf("%s: no evaluations recorded on the live fabric", name)
			}
			if !moved(lf.factory(cfg.Seed).WeightsCopy(), final) {
				t.Fatalf("%s: global model never moved", name)
			}
			for i, err := range clientErrs {
				if err != nil {
					t.Fatalf("%s: client %d error: %v", name, i, err)
				}
			}
		})
	}
}

// captureFinal returns an observer recording the latest global model.
func captureFinal(final *[]float64) fl.Observer {
	return fl.ObserverFunc(func(ev fl.Event) {
		if e, ok := ev.(fl.TierFoldEvent); ok {
			*final = append((*final)[:0], e.Global...)
		}
	})
}

// TestLiveMatchesSimulated is the cross-fabric contract: a sync-paced
// method run over real TCP produces bit-identical final weights to an
// in-process simulator run under identical selection — same seed, same
// codec channel, same local schedules, no drops. The engine makes every
// policy decision on both fabrics; only execution differs.
func TestLiveMatchesSimulated(t *testing.T) {
	// The composed case runs the per-update staleness fold with the
	// adaptive-LR stage armed under sync pacing: every cohort member is
	// fresh, so the weight is exactly 1 and both fabrics must skip the LR
	// stage identically — turning AdaptiveLR on cannot perturb a sync run,
	// and the LRScale header field must survive the trip without changing
	// training. (The non-unit scale itself is pinned bit-exactly by
	// TestAdaptiveLRScaleOverTCP; wait-free pacing has no cross-fabric
	// bit contract to compare under.)
	adaptive, err := fl.Compose("fedasync", "random", "sync", "fedasync:poly:0.5", "fedasync-sync-adaptive")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		method fl.Method
		mutate func(*fl.RunConfig)
	}{
		{"fedavg", fl.Methods["fedavg"], nil},
		{"fedprox", fl.Methods["fedprox"], nil},
		{"fedasync-sync-adaptive", adaptive, func(cfg *fl.RunConfig) { cfg.AdaptiveLR = true }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			const n = 6
			seed := uint64(13)
			lf := newLiveFederation(t, n, 0, seed)
			cfg := liveCfg(seed)
			cfg.Rounds = 3
			cfg.Codec = codec.NewPolyline(4)
			if c.mutate != nil {
				c.mutate(&cfg)
			}

			// Simulated run: same federation, stable population.
			cluster, err := simnet.NewCluster(simnet.ClusterConfig{NumClients: n, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			env, err := fl.NewEnv(lf.fed, cluster, lf.factory, cfg)
			if err != nil {
				t.Fatal(err)
			}
			var simFinal []float64
			if _, err := c.method.Run(env, captureFinal(&simFinal)); err != nil {
				t.Fatal(err)
			}

			// Live run over loopback TCP.
			_, liveFinal, clientErrs := lf.runLive(t, c.method, cfg, nil)
			for i, err := range clientErrs {
				if err != nil {
					t.Fatalf("client %d error: %v", i, err)
				}
			}

			if len(simFinal) == 0 || len(simFinal) != len(liveFinal) {
				t.Fatalf("weight vectors missing or mismatched: sim=%d live=%d", len(simFinal), len(liveFinal))
			}
			for i := range simFinal {
				if simFinal[i] != liveFinal[i] {
					t.Fatalf("%s: weight %d diverged between fabrics: sim=%v live=%v", c.name, i, simFinal[i], liveFinal[i])
				}
			}
		})
	}
}

// TestAdaptiveLRScaleOverTCP is the wire-level half of the adaptive-LR
// contract: a client receiving a non-unit LRScale in its push header must
// train bit-identically to an in-process fl.LocalClient handed the same
// fl.LocalConfig — the scale the engine computes is exactly the scale the
// remote optimizer applies. A raw codec keeps the comparison lossless.
func TestAdaptiveLRScaleOverTCP(t *testing.T) {
	lf := newLiveFederation(t, 1, 0, 91)
	seed := uint64(9)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ln.(*net.TCPListener).SetDeadline(time.Now().Add(30 * time.Second))

	clientDone := make(chan error, 1)
	go func() {
		clientDone <- RunClient(ClientConfig{
			Addr: ln.Addr().String(), ID: 0, LatencyHintMs: 10,
			Data: lf.fed.Clients[0], Net: lf.factory(seed),
			Opt: opt.NewAdam(0.01), Codec: codec.Raw{}, Seed: seed,
		})
	}()

	conn, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	typ, _, err := ReadFrame(conn)
	if err != nil || typ != MsgRegister {
		t.Fatalf("expected register, got type %d err %v", typ, err)
	}

	global := lf.factory(seed).WeightsCopy()
	push := func(scale float64) []float64 {
		t.Helper()
		msg, err := codec.MarshalModel(codec.Raw{}, lf.shapes, global)
		if err != nil {
			t.Fatal(err)
		}
		spec := PushSpec{Round: 0, Epochs: 1, Batch: 8, Lambda: 0.4, LRScale: scale}
		if err := WriteFrame(conn, MsgModelPush, ModelPush(spec, msg)); err != nil {
			t.Fatal(err)
		}
		typ, payload, err := ReadFrame(conn)
		if err != nil || typ != MsgModelUpdate {
			t.Fatalf("expected model update, got type %d err %v", typ, err)
		}
		_, _, _, m, err := ParseModelUpdate(payload)
		if err != nil {
			t.Fatal(err)
		}
		_, w, err := codec.UnmarshalModel(m)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}

	wire := push(0.6)
	if err := WriteFrame(conn, MsgShutdown, nil); err != nil {
		t.Fatal(err)
	}
	if cerr := <-clientDone; cerr != nil {
		t.Fatalf("client error: %v", cerr)
	}

	lc := fl.LocalConfig{Epochs: 1, BatchSize: 8, Lambda: 0.4, Round: 0, LRScale: 0.6}
	mirror := fl.NewLocalClient(0, lf.fed.Clients[0], lf.factory(seed), opt.NewAdam(0.01), seed)
	want, _ := mirror.TrainLocal(global, lc)
	if len(wire) != len(want) {
		t.Fatalf("weight vectors mismatched: wire=%d local=%d", len(wire), len(want))
	}
	for i := range want {
		if wire[i] != want[i] {
			t.Fatalf("weight %d diverged between wire and local scaled step: %v vs %v", i, wire[i], want[i])
		}
	}

	// The scale must genuinely change the step — otherwise the assertions
	// above would also pass with the header field dropped on the floor.
	lc.LRScale = 0
	unscaled := fl.NewLocalClient(0, lf.fed.Clients[0], lf.factory(seed), opt.NewAdam(0.01), seed)
	base, _ := unscaled.TrainLocal(global, lc)
	if !moved(base, wire) {
		t.Fatal("LRScale 0.6 trained identically to the unscaled step — the wire scale had no effect")
	}
}

// ---------------------------------------------------------------------------
// Failure modes

// flakyClient registers properly, then misbehaves on the first push.
func flakyClient(t *testing.T, addr string, id uint32, respond func(conn net.Conn, payload []byte)) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Errorf("flaky client dial: %v", err)
		return
	}
	defer conn.Close()
	reg := Register{ClientID: id, NumSamples: 50, LatencyHintMs: 10}
	if err := WriteFrame(conn, MsgRegister, reg.Marshal()); err != nil {
		t.Errorf("flaky client register: %v", err)
		return
	}
	typ, payload, err := ReadFrame(conn)
	if err != nil || typ != MsgModelPush {
		return // server may already be shutting down
	}
	respond(conn, payload)
}

// runWithFlaky deploys fedavg with clients 0,1 honest and client 2 driven
// by the given misbehavior, asserting the run completes without it.
func runWithFlaky(t *testing.T, respond func(conn net.Conn, payload []byte)) {
	lf := newLiveFederation(t, 3, 0, 41)
	cfg := liveCfg(3)
	cfg.Rounds = 3
	cfg.ClientsPerRound = 3

	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", NumClients: 3, Method: fl.Methods["fedavg"], Run: cfg,
		Shapes: lf.shapes, W0: lf.factory(cfg.Seed).WeightsCopy(), Dataset: lf.fed.Name,
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	honestErrs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			honestErrs[i] = RunClient(ClientConfig{
				Addr: srv.Addr(), ID: uint32(i), LatencyHintMs: 10,
				Data: lf.fed.Clients[i], Net: lf.factory(cfg.Seed),
				Opt: opt.NewAdam(cfg.LearningRate), Seed: cfg.Seed,
			})
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		flakyClient(t, srv.Addr(), 2, respond)
	}()

	run, final, err := srv.Run()
	wg.Wait()
	if err != nil {
		t.Fatalf("server error: %v", err)
	}
	if run.GlobalRounds < cfg.Rounds {
		t.Fatalf("only %d global rounds completed after client failure", run.GlobalRounds)
	}
	if !moved(lf.factory(cfg.Seed).WeightsCopy(), final) {
		t.Fatal("global model never moved")
	}
	for i, err := range honestErrs {
		if err != nil {
			t.Fatalf("honest client %d error: %v", i, err)
		}
	}
}

// TestClientDisconnectMidRound: a selected client vanishes between the
// model push and its response. The round folds without it and training
// continues on the surviving population.
func TestClientDisconnectMidRound(t *testing.T) {
	runWithFlaky(t, func(conn net.Conn, _ []byte) {
		conn.Close() // hang up instead of answering the push
	})
}

// TestDecodeErrorOnPush: a client answers the push with an update whose
// model payload is garbage. The server drops it and the round folds with
// the remaining updates.
func TestDecodeErrorOnPush(t *testing.T) {
	runWithFlaky(t, func(conn net.Conn, payload []byte) {
		spec, _, err := ParseModelPush(payload)
		if err != nil {
			return
		}
		WriteFrame(conn, MsgModelUpdate, ModelUpdate(2, 50, spec.Round, []byte{0xde, 0xad}))
	})
}

// TestSilentPeerTimesOut: a client that accepts the model push and then
// goes silent — without closing its socket — must not stall the round
// forever. The round timeout drops it and training completes on the
// survivors.
func TestSilentPeerTimesOut(t *testing.T) {
	lf := newLiveFederation(t, 3, 0, 41)
	cfg := liveCfg(3)
	cfg.Rounds = 2
	cfg.ClientsPerRound = 3

	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", NumClients: 3, Method: fl.Methods["fedavg"], Run: cfg,
		Shapes: lf.shapes, W0: lf.factory(cfg.Seed).WeightsCopy(), Dataset: lf.fed.Name,
		RoundTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	honestErrs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			honestErrs[i] = RunClient(ClientConfig{
				Addr: srv.Addr(), ID: uint32(i), LatencyHintMs: 10,
				Data: lf.fed.Clients[i], Net: lf.factory(cfg.Seed),
				Opt: opt.NewAdam(cfg.LearningRate), Seed: cfg.Seed,
			})
		}(i)
	}
	silent := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		flakyClient(t, srv.Addr(), 2, func(net.Conn, []byte) {
			<-silent // hold the socket open, never answer
		})
	}()

	done := make(chan struct{})
	var run *metrics.Run
	var srvErr error
	go func() {
		run, _, srvErr = srv.Run()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("silent peer stalled the server")
	}
	close(silent)
	wg.Wait()
	if srvErr != nil {
		t.Fatalf("server error: %v", srvErr)
	}
	if run.GlobalRounds < cfg.Rounds {
		t.Fatalf("only %d global rounds completed alongside a silent peer", run.GlobalRounds)
	}
	for i, err := range honestErrs {
		if err != nil {
			t.Fatalf("honest client %d error: %v", i, err)
		}
	}
}

// TestDuplicateClientIDFailsFast: two clients registering the same id is a
// fleet misconfiguration; the server errors out instead of waiting forever
// for a distinct id that will never arrive.
func TestDuplicateClientIDFailsFast(t *testing.T) {
	lf := newLiveFederation(t, 2, 0, 71)
	cfg := liveCfg(3)
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", NumClients: 2, Method: fl.Methods["fedavg"], Run: cfg,
		Shapes: lf.shapes, W0: lf.factory(cfg.Seed).WeightsCopy(), Dataset: lf.fed.Name,
	})
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, _, err := srv.Run()
		errc <- err
	}()
	for i := 0; i < 2; i++ {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		reg := Register{ClientID: 0, NumSamples: 10, LatencyHintMs: 10} // same id twice
		if err := WriteFrame(conn, MsgRegister, reg.Marshal()); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case err := <-errc:
		if err == nil || !strings.Contains(err.Error(), "duplicate client id") {
			t.Fatalf("Run returned %v, want duplicate-id error", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server hung on a duplicate registration")
	}
}

// TestShutdownMidRun: Shutdown during training interrupts in-flight
// response reads, so Run returns promptly instead of stalling behind the
// round in progress; the partial run record comes back without error.
func TestShutdownMidRun(t *testing.T) {
	lf := newLiveFederation(t, 3, 0, 81)
	cfg := liveCfg(3)
	cfg.Rounds = 100000 // far more than can complete; Shutdown must end it

	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", NumClients: 3, Method: fl.Methods["fedavg"], Run: cfg,
		Shapes: lf.shapes, W0: lf.factory(cfg.Seed).WeightsCopy(), Dataset: lf.fed.Name,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Mid-round clients may be dropped by the interrupt; errors
			// here are expected and not asserted.
			RunClient(ClientConfig{
				Addr: srv.Addr(), ID: uint32(i), LatencyHintMs: 10,
				ArtificialDelay: 50 * time.Millisecond,
				Data:            lf.fed.Clients[i], Net: lf.factory(cfg.Seed),
				Opt: opt.NewAdam(cfg.LearningRate), Seed: cfg.Seed,
			})
		}(i)
	}
	type outcome struct {
		run *metrics.Run
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		run, _, err := srv.Run()
		done <- outcome{run, err}
	}()
	time.Sleep(300 * time.Millisecond) // let a few rounds fly
	srv.Shutdown()
	select {
	case out := <-done:
		if out.err != nil {
			t.Fatalf("server error after mid-run shutdown: %v", out.err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("Run did not return promptly after mid-run Shutdown")
	}
	wg.Wait()
}

// TestShutdownWithRegisteredClients: the operator shuts the server down
// while registration is still open. Run returns an error that says so, and
// the already-registered clients receive a clean shutdown frame instead of
// hanging forever.
func TestShutdownWithRegisteredClients(t *testing.T) {
	lf := newLiveFederation(t, 3, 0, 51)
	cfg := liveCfg(3)

	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", NumClients: 3, Method: fl.Methods["fedavg"], Run: cfg,
		Shapes: lf.shapes, W0: lf.factory(cfg.Seed).WeightsCopy(), Dataset: lf.fed.Name,
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	clientErrs := make([]error, 2)
	for i := 0; i < 2; i++ { // only 2 of the expected 3 ever show up
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			clientErrs[i] = RunClient(ClientConfig{
				Addr: srv.Addr(), ID: uint32(i), LatencyHintMs: 10,
				Data: lf.fed.Clients[i], Net: lf.factory(cfg.Seed),
				Opt: opt.NewAdam(cfg.LearningRate), Seed: cfg.Seed,
			})
		}(i)
	}

	errc := make(chan error, 1)
	go func() {
		_, _, err := srv.Run()
		errc <- err
	}()
	for i := 0; srv.Registered() < 2; i++ {
		if i > 500 {
			t.Fatal("clients never registered")
		}
		time.Sleep(10 * time.Millisecond)
	}
	srv.Shutdown()

	select {
	case err := <-errc:
		if err == nil || !strings.Contains(err.Error(), "shut down during registration") {
			t.Fatalf("Run returned %v, want shutdown-during-registration error", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not return after Shutdown")
	}
	wg.Wait()
	for i, err := range clientErrs {
		if err != nil {
			t.Fatalf("registered client %d did not shut down cleanly: %v", i, err)
		}
	}
}

// ---------------------------------------------------------------------------
// Validation

func TestServerValidation(t *testing.T) {
	valid := fl.RunConfig{Rounds: 1, NumTiers: 1}
	if _, err := NewServer(ServerConfig{NumClients: 0, Run: valid, W0: []float64{1}}); err == nil {
		t.Fatal("zero clients accepted")
	}
	if _, err := NewServer(ServerConfig{NumClients: 2, Run: valid, Addr: "127.0.0.1:0"}); err == nil {
		t.Fatal("empty model accepted")
	}
	// A live deployment must not run engine defaults off a typo: rounds
	// and tiers are required explicitly, and tier-count mistakes fail
	// before any client connects.
	if _, err := NewServer(ServerConfig{NumClients: 2, Run: fl.RunConfig{NumTiers: 1}, W0: []float64{1}}); err == nil {
		t.Fatal("zero rounds accepted")
	}
	if _, err := NewServer(ServerConfig{NumClients: 2, Run: fl.RunConfig{Rounds: 1, NumTiers: 5}, W0: []float64{1}}); err == nil {
		t.Fatal("more tiers than clients accepted")
	}
}

// TestEngineErrorSurfacesAndShutsDown: an engine-level composition failure
// (a selector without the capability its pacer needs) comes back through
// Server.Run as an error, and registered clients are still released
// cleanly instead of hanging.
func TestEngineErrorSurfacesAndShutsDown(t *testing.T) {
	lf := newLiveFederation(t, 2, 0, 61)
	cfg := liveCfg(3)

	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", NumClients: 2,
		// "all" is not a RoundSelector: sync pacing must reject it.
		Method: fl.Method{Name: "Broken", Select: "all", Pace: "sync", Update: "avg"},
		Run:    cfg,
		Shapes: lf.shapes, W0: lf.factory(cfg.Seed).WeightsCopy(), Dataset: lf.fed.Name,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	clientErrs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			clientErrs[i] = RunClient(ClientConfig{
				Addr: srv.Addr(), ID: uint32(i), LatencyHintMs: 10,
				Data: lf.fed.Clients[i], Net: lf.factory(cfg.Seed),
				Opt: opt.NewAdam(cfg.LearningRate), Seed: cfg.Seed,
			})
		}(i)
	}
	_, _, err = srv.Run()
	wg.Wait()
	if err == nil {
		t.Fatal("invalid composition accepted by the live engine")
	}
	for i, cerr := range clientErrs {
		if cerr != nil {
			t.Fatalf("client %d not released cleanly after engine error: %v", i, cerr)
		}
	}
}

func TestClientValidation(t *testing.T) {
	if err := RunClient(ClientConfig{}); err == nil {
		t.Fatal("empty client config accepted")
	}
}

// TestLiveRetierFromMeasuredLatencies deploys FedAT with runtime re-tiering
// over loopback TCP where every client's registration latency hint is the
// OPPOSITE of its real speed: the hint-fast clients carry a large artificial
// delay and the hint-slow ones none. The engine must correct the one-shot
// hint partition from measured wall-clock response latencies — retier passes
// fire and clients migrate toward their true tiers.
func TestLiveRetierFromMeasuredLatencies(t *testing.T) {
	lf := newLiveFederation(t, 6, 0, 31)
	cfg := liveCfg(7)
	// Enough folds that the delayed tier is observed several times before
	// the budget runs out (the undelayed tier folds much faster).
	cfg.Rounds = 24
	cfg.ClientsPerRound = 3
	cfg.RetierEvery = 2
	cfg.RetierAlpha = 0.5

	srv, err := NewServer(ServerConfig{
		Addr:       "127.0.0.1:0",
		NumClients: lf.n,
		Method:     fl.Methods["fedat"],
		Run:        cfg,
		Shapes:     lf.shapes,
		W0:         lf.factory(cfg.Seed).WeightsCopy(),
		Dataset:    lf.fed.Name,
	})
	if err != nil {
		t.Fatal(err)
	}
	var retiers, migrations int
	srv.extraObs = []fl.Observer{fl.ObserverFunc(func(ev fl.Event) {
		if e, ok := ev.(fl.RetierEvent); ok {
			retiers++
			migrations += e.Migrations
		}
	})}

	var wg sync.WaitGroup
	clientErrs := make([]error, lf.n)
	for i := 0; i < lf.n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Hints claim 0..2 fast and 3..5 slow; reality is inverted:
			// the hint-fast half is 3x slower. Both halves carry real
			// delays so the quick tier cannot burn the whole fold budget
			// before the slow tier's first response is ever measured.
			hint, delay := uint32(10), 300*time.Millisecond
			if i >= lf.n/2 {
				hint, delay = 500, 100*time.Millisecond
			}
			clientErrs[i] = RunClient(ClientConfig{
				Addr: srv.Addr(), ID: uint32(i), LatencyHintMs: hint,
				ArtificialDelay: delay,
				Data:            lf.fed.Clients[i], Net: lf.factory(cfg.Seed),
				Opt: opt.NewAdam(cfg.LearningRate), Seed: cfg.Seed,
			})
		}(i)
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := srv.Run()
		done <- err
	}()
	select {
	case err = <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("server did not finish in time")
	}
	wg.Wait()
	if err != nil {
		t.Fatalf("server error: %v", err)
	}
	for i, cerr := range clientErrs {
		if cerr != nil {
			t.Fatalf("client %d error: %v", i, cerr)
		}
	}
	if retiers == 0 {
		t.Fatal("no retier pass fired on the live fabric")
	}
	if migrations == 0 {
		t.Fatal("measured latencies never overturned the inverted hints")
	}
}

// TestDialRetryConnectsToLateServer starts the client BEFORE the listener
// exists: the dial retry must bridge the gap (the smoke deployments start
// server and clients concurrently).
func TestDialRetryConnectsToLateServer(t *testing.T) {
	lf := newLiveFederation(t, 1, 0, 41)
	cfg := liveCfg(9)
	cfg.Rounds = 1
	cfg.ClientsPerRound = 1
	cfg.NumTiers = 1

	// Reserve an address, then release it so the client's first dials fail.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	clientDone := make(chan error, 1)
	go func() {
		clientDone <- RunClient(ClientConfig{
			Addr: addr, ID: 0, LatencyHintMs: 10,
			Data: lf.fed.Clients[0], Net: lf.factory(cfg.Seed),
			Opt: opt.NewAdam(cfg.LearningRate), Seed: cfg.Seed,
		})
	}()
	time.Sleep(300 * time.Millisecond) // client is now retrying
	srv, err := NewServer(ServerConfig{
		Addr:       addr,
		NumClients: 1,
		Method:     fl.Methods["fedavg"],
		Run:        cfg,
		Shapes:     lf.shapes,
		W0:         lf.factory(cfg.Seed).WeightsCopy(),
		Dataset:    lf.fed.Name,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := srv.Run()
		done <- err
	}()
	select {
	case err = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("server did not finish in time")
	}
	if err != nil {
		t.Fatalf("server error: %v", err)
	}
	if cerr := <-clientDone; cerr != nil {
		t.Fatalf("client error: %v", cerr)
	}
}
