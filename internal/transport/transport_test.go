package transport

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/rng"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello fedat")
	if err := WriteFrame(&buf, MsgModelPush, payload); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgModelPush || string(got) != string(payload) {
		t.Fatalf("frame corrupted: %d %q", typ, got)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgShutdown, nil); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(&buf)
	if err != nil || typ != MsgShutdown || len(got) != 0 {
		t.Fatalf("empty frame: %v %d %v", err, typ, got)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, MsgRegister, []byte{1, 2, 3})
	data := buf.Bytes()[:buf.Len()-2]
	if _, _, err := ReadFrame(bytes.NewReader(data)); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestRegisterRoundTrip(t *testing.T) {
	r := Register{ClientID: 7, NumSamples: 123, LatencyHintMs: 4500}
	got, err := ParseRegister(r.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Fatalf("register corrupted: %+v", got)
	}
	if _, err := ParseRegister([]byte{1, 2}); err == nil {
		t.Fatal("short register accepted")
	}
}

func TestModelMessagesRoundTrip(t *testing.T) {
	model := []byte("model-bytes")
	round, m, err := ParseModelPush(ModelPush(42, model))
	if err != nil || round != 42 || string(m) != string(model) {
		t.Fatalf("push corrupted: %v %d %q", err, round, m)
	}
	cid, n, rd, m2, err := ParseModelUpdate(ModelUpdate(3, 99, 42, model))
	if err != nil || cid != 3 || n != 99 || rd != 42 || string(m2) != string(model) {
		t.Fatalf("update corrupted: %v %d %d %d %q", err, cid, n, rd, m2)
	}
	if _, _, err := ParseModelPush([]byte{1}); err == nil {
		t.Fatal("short push accepted")
	}
	if _, _, _, _, err := ParseModelUpdate([]byte{1, 2, 3}); err == nil {
		t.Fatal("short update accepted")
	}
}

// TestEndToEnd runs a real FedAT deployment over localhost TCP: one server,
// six clients in two latency tiers, six global rounds. It validates that
// the networked system and the in-memory core agree on the protocol: all
// rounds complete, every tier contributes, and the model actually moves.
func TestEndToEnd(t *testing.T) {
	fed, err := dataset.FashionLike(6, 0, dataset.ScaleSmall, 21)
	if err != nil {
		t.Fatal(err)
	}
	factory := func(seed uint64) *nn.Network {
		return nn.NewMLP(rng.New(seed), fed.InDim, 8, fed.Classes)
	}
	ref := factory(1)
	shapes := make([]codec.ShapeInfo, 0)
	for _, s := range ref.ParamShapes() {
		shapes = append(shapes, codec.ShapeInfo{Name: s.Name, Dims: s.Dims})
	}

	srv, err := NewServer(ServerConfig{
		Addr:            "127.0.0.1:0",
		NumClients:      6,
		NumTiers:        2,
		Rounds:          6,
		ClientsPerRound: 3,
		Weighted:        true,
		Codec:           codec.NewPolyline(4),
		Shapes:          shapes,
		W0:              ref.WeightsCopy(),
		Seed:            5,
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	clientErrs := make([]error, 6)
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			hint := uint32(10)
			if i >= 3 {
				hint = 500 // slow tier
			}
			clientErrs[i] = RunClient(ClientConfig{
				Addr:          srv.Addr(),
				ID:            uint32(i),
				LatencyHintMs: hint,
				Data:          fed.Clients[i],
				Net:           factory(1),
				Opt:           opt.NewAdam(0.01),
				Epochs:        1,
				BatchSize:     8,
				Lambda:        0.4,
				Seed:          9,
			})
		}(i)
	}

	done := make(chan struct{})
	var final []float64
	var srvErr error
	go func() {
		final, srvErr = srv.Run()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("server did not finish in time")
	}
	wg.Wait()

	if srvErr != nil {
		t.Fatalf("server error: %v", srvErr)
	}
	for i, err := range clientErrs {
		if err != nil {
			t.Fatalf("client %d error: %v", i, err)
		}
	}
	if got := srv.Aggregator().Rounds(); got < 6 {
		t.Fatalf("only %d global rounds completed", got)
	}
	counts := srv.Aggregator().TierCounts()
	for m, c := range counts {
		if c == 0 {
			t.Fatalf("tier %d never contributed: %v", m, counts)
		}
	}
	moved := false
	w0 := ref.WeightsCopy()
	for i := range final {
		if final[i] != w0[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("global model never moved")
	}
}

func TestServerValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{NumClients: 0, Rounds: 1, NumTiers: 1, W0: []float64{1}}); err == nil {
		t.Fatal("zero clients accepted")
	}
	if _, err := NewServer(ServerConfig{NumClients: 2, Rounds: 1, NumTiers: 5, W0: []float64{1}, Addr: "127.0.0.1:0"}); err == nil {
		t.Fatal("more tiers than clients accepted")
	}
	if _, err := NewServer(ServerConfig{NumClients: 2, Rounds: 1, NumTiers: 1, Addr: "127.0.0.1:0"}); err == nil {
		t.Fatal("empty model accepted")
	}
}

func TestClientValidation(t *testing.T) {
	if err := RunClient(ClientConfig{}); err == nil {
		t.Fatal("empty client config accepted")
	}
}
