package transport

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/edge"
	"repro/internal/fl"
)

// UplinkConfig configures an edge aggregator's connection to the root.
type UplinkConfig struct {
	// Root is the root server's address.
	Root string
	// EdgeID is this edge's id in the root's 0..K-1 space.
	EdgeID int
	// NumClients is advisory (the root logs it).
	NumClients int
	// PushEvery is how many of the edge engine's own folds pass between
	// cloud pushes; default 1.
	PushEvery int
	// TopKFrac enables the top-k delta uplink; must match the root's.
	TopKFrac float64
	// W0 is the initial model (the delta codec's reference base); Shapes
	// its layout. Must match the root's.
	W0     []float64
	Shapes []codec.ShapeInfo
	// DialTimeout bounds the initial connect retries (root and edges start
	// concurrently); 0 means the 5-second default, negative tries once.
	DialTimeout time.Duration
	Logf        func(format string, args ...any)
}

// EdgeUplink connects one edge server's engine to the live root: as an
// fl.Syncer on the engine's observer list it pushes the fresh edge model
// up after each PushEvery-th fold and rebases the engine onto whatever
// merged model the root has broadcast since. If the root goes away (or a
// write fails, which would desynchronize the shared delta reference), the
// uplink degrades permanently to standalone: the edge keeps serving its
// own clients as a flat server — the hierarchy's graceful-degradation
// contract.
type EdgeUplink struct {
	cfg  UplinkConfig
	conn net.Conn
	wmu  sync.Mutex
	cdc  codec.Codec
	ref  []float64 // shared delta reference, advanced on every sent push

	folds  int
	pushes uint64

	mu          sync.Mutex
	adoption    []float64 // latest merged model from the root, nil once taken
	adoptEpoch  int
	members     int
	lastAdopted int
	degraded    bool
}

// DialUplink connects and registers with the root. The reader goroutine it
// starts delivers adoption broadcasts into a mailbox the engine drains at
// its own fold points, so the engine's loop never blocks on the root.
func DialUplink(cfg UplinkConfig) (*EdgeUplink, error) {
	if cfg.PushEvery <= 0 {
		cfg.PushEvery = 1
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if len(cfg.W0) == 0 {
		return nil, fmt.Errorf("transport: uplink needs the initial model")
	}
	conn, err := dialRetry(cfg.Root, cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	reg := Register{ClientID: uint32(cfg.EdgeID), NumSamples: uint32(cfg.NumClients)}
	if err := WriteFrame(conn, MsgRegister, reg.Marshal()); err != nil {
		conn.Close()
		return nil, err
	}
	u := &EdgeUplink{cfg: cfg, conn: conn, cdc: codec.Raw{}}
	if cfg.TopKFrac > 0 {
		u.cdc = &codec.TopK{Frac: cfg.TopKFrac}
	}
	u.ref = append([]float64(nil), cfg.W0...)
	go u.readLoop()
	return u, nil
}

// Close tears the connection down (after the edge engine has finished).
func (u *EdgeUplink) Close() { u.conn.Close() }

// Degraded reports whether the uplink has fallen back to standalone.
func (u *EdgeUplink) Degraded() bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.degraded
}

// readLoop fills the adoption mailbox until the root disconnects.
func (u *EdgeUplink) readLoop() {
	for {
		typ, payload, err := ReadFrame(u.conn)
		if err != nil {
			u.degrade("root connection lost: %v", err)
			return
		}
		switch typ {
		case MsgShutdown:
			u.degrade("root completed its fold budget")
			return
		case MsgModelPush:
			spec, modelMsg, err := ParseModelPush(payload)
			if err != nil {
				u.degrade("malformed adoption push: %v", err)
				return
			}
			_, w, err := codec.UnmarshalModel(modelMsg)
			if err != nil {
				u.degrade("adoption model corrupt: %v", err)
				return
			}
			u.mu.Lock()
			u.adoption = w
			u.adoptEpoch = int(spec.Round)
			u.members = spec.Epochs
			u.mu.Unlock()
		default:
			u.cfg.Logf("edge uplink %d: unexpected message type %d", u.cfg.EdgeID, typ)
		}
	}
}

func (u *EdgeUplink) degrade(format string, args ...any) {
	u.mu.Lock()
	already := u.degraded
	u.degraded = true
	u.mu.Unlock()
	if !already {
		u.cfg.Logf("edge uplink %d: degrading to standalone: %s", u.cfg.EdgeID, fmt.Sprintf(format, args...))
	}
}

// OnEvent implements fl.Observer; the uplink acts only through AfterFold.
func (u *EdgeUplink) OnEvent(fl.Event) {}

// AfterFold implements fl.Syncer: push the fresh edge model to the root,
// then adopt whatever merged model the root broadcast since the last fold.
// Both halves run on the engine's loop goroutine, so the rebase lands
// between engine steps exactly as in the simulated hierarchy.
func (u *EdgeUplink) AfterFold(f fl.FoldInfo) fl.SyncDirective {
	var d fl.SyncDirective
	if u.Degraded() {
		return d
	}
	u.folds++
	if u.folds%u.cfg.PushEvery == 0 {
		msg, err := edge.EncodeUplink(u.cdc, u.cfg.Shapes, u.ref, f.Global)
		if err != nil {
			u.degrade("encode push: %v", err)
			return d
		}
		u.pushes++
		frame := ModelUpdate(uint32(u.cfg.EdgeID), 0, u.pushes, msg)
		u.wmu.Lock()
		err = WriteFrame(u.conn, MsgModelUpdate, frame)
		u.wmu.Unlock()
		if err != nil {
			// An unsent push must not advance the shared reference — the
			// root never saw it, so continuing would corrupt every later
			// delta. Degrade instead.
			u.degrade("push write: %v", err)
			return d
		}
		// Advance our reference exactly as the root reconstructs it.
		if _, err := edge.DecodeUplink(msg, u.ref); err != nil {
			u.degrade("reference advance: %v", err)
			return d
		}
	}
	u.mu.Lock()
	if u.adoption != nil && u.adoptEpoch > u.lastAdopted {
		staleness := float64(u.adoptEpoch - u.lastAdopted - 1)
		d.Rebase = u.adoption
		d.Events = append(d.Events, fl.EdgeFoldEvent{
			Edge:      u.cfg.EdgeID,
			Round:     u.adoptEpoch,
			Time:      f.Time,
			Staleness: staleness,
			Members:   u.members,
		})
		u.lastAdopted = u.adoptEpoch
		u.adoption = nil
	}
	u.mu.Unlock()
	return d
}
