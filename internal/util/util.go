// Package util holds tiny generic helpers shared across layers. It sits
// below everything else (no in-module imports), so any package may use it
// without creating cycles.
package util

import (
	"cmp"
	"sort"
)

// SortedKeys returns the keys of m in ascending order. Registries keyed by
// name (fl.Methods, experiments.Registry, the experiment scheduler's run
// cache) use it to iterate deterministically: map iteration order is
// randomized, but reports, dispatch order and CLI listings must not be.
func SortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return cmp.Less(keys[i], keys[j]) })
	return keys
}
