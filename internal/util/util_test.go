package util

import (
	"reflect"
	"testing"
)

func TestSortedKeysStrings(t *testing.T) {
	m := map[string]int{"fig2": 1, "table1": 2, "ablation-lambda": 3, "fig10": 4}
	got := SortedKeys(m)
	want := []string{"ablation-lambda", "fig10", "fig2", "table1"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedKeys = %v, want %v", got, want)
	}
}

func TestSortedKeysInts(t *testing.T) {
	m := map[int]string{3: "c", 1: "a", 2: "b"}
	if got := SortedKeys(m); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("SortedKeys = %v", got)
	}
}

func TestSortedKeysEmptyAndNil(t *testing.T) {
	if got := SortedKeys(map[string]int{}); len(got) != 0 {
		t.Fatalf("empty map gave %v", got)
	}
	var m map[string]int
	if got := SortedKeys(m); len(got) != 0 {
		t.Fatalf("nil map gave %v", got)
	}
}

func TestSortedKeysDeterministic(t *testing.T) {
	m := map[string]struct{}{}
	for _, k := range []string{"q", "a", "z", "m", "b", "x"} {
		m[k] = struct{}{}
	}
	first := SortedKeys(m)
	for i := 0; i < 10; i++ {
		if !reflect.DeepEqual(SortedKeys(m), first) {
			t.Fatal("SortedKeys order not stable across calls")
		}
	}
}
